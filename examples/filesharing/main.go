// Filesharing: interest-based s-networks (§5.3 of the paper). Peers declare
// a content category when they join; the bootstrap server places them in the
// s-network serving that category, so most lookups stay inside the local
// s-network and never touch the t-network.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

const categories = 16

func main() {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 21)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(21)
	net := simnet.New(eng, topo, simnet.DefaultConfig())

	cfg := core.DefaultConfig()
	cfg.Ps = 0.8 // most peers are s-peers: communities, not infrastructure
	cfg.InterestCategories = categories
	cfg.Assignment = core.AssignInterest
	// Interest communities hold ~N·ps/categories peers each; give the
	// flood a radius covering the whole community tree plus one reflood
	// for stragglers.
	cfg.TTL = 8
	cfg.Reflood = 1
	cfg.LookupTimeout = 5 * sim.Second
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		log.Fatal(err)
	}

	// Infrastructure first: bring up the t-network ring, then let the
	// interest communities join. (If t-peers kept arriving, segments would
	// move under already-assigned communities.)
	const n = 400
	tRole, sRole := core.TPeer, core.SPeer
	if _, _, err := sys.BuildPopulation(core.PopulationOpts{N: n / 5, ForceRole: &tRole}); err != nil {
		log.Fatal(err)
	}
	// Every s-peer declares an interest: round-robin over the categories.
	interests := make([]int, n-n/5)
	for i := range interests {
		interests[i] = i % categories
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: n - n/5, Interests: interests, ForceRole: &sRole})
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	// Publish themed content. Keys carry their category ("cat03/...").
	keys := workload.InterestKeys(1200, categories)
	for i, key := range keys {
		cat := workload.KeyCategory(key)
		// Publishers are peers interested in the key's own category.
		publisher := peers[pickWithInterest(peers, cat, i)]
		if _, err := sys.StoreSync(publisher, key, "blob"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("published %d items across %d interest communities\n", len(keys), categories)

	// Two lookup phases over the same keys: requesters sharing the key's
	// interest, then requesters from an unrelated community. The quantity
	// that separates them is t-network load: ring forwards per lookup.
	measure := func(sameInterest bool) (okCount int, ringPer, ms float64) {
		before := sys.Stats().RingForwards
		n := 0
		for i := 0; i < 300; i++ {
			key := keys[(i*13)%len(keys)]
			cat := workload.KeyCategory(key)
			pickCat := cat
			if !sameInterest {
				pickCat = (cat + 5) % categories
			}
			origin := peers[pickWithInterest(peers, pickCat, i)]
			r, err := sys.LookupSync(origin, key)
			if err != nil {
				log.Fatal(err)
			}
			n++
			if r.OK {
				okCount++
				ms += float64(r.Latency) / float64(sim.Millisecond)
			}
		}
		ringPer = float64(sys.Stats().RingForwards-before) / float64(n)
		if okCount > 0 {
			ms /= float64(okCount)
		}
		return okCount, ringPer, ms
	}

	okSame, ringSame, msSame := measure(true)
	okCross, ringCross, msCross := measure(false)

	fmt.Printf("\nsame-interest lookups:  %4d/300 ok, %.2f t-network ring hops per lookup, %.1f ms\n",
		okSame, ringSame, msSame)
	fmt.Printf("cross-interest lookups: %4d/300 ok, %.2f t-network ring hops per lookup, %.1f ms\n",
		okCross, ringCross, msCross)
	fmt.Println("\nsame-interest traffic stays inside one s-network — zero t-network load;")
	fmt.Println("cross-interest traffic pays the ring routing toll — exactly the §5.3 claim.")
}

// pickWithInterest returns the index of the k-th peer with the given
// interest (wrapping).
func pickWithInterest(peers []*core.Peer, interest, k int) int {
	count := 0
	for i := 0; i < len(peers)*2; i++ {
		p := peers[i%len(peers)]
		if p.Interest == interest && p.Alive() {
			if count == k%16 {
				return i % len(peers)
			}
			count++
		}
	}
	return 0
}

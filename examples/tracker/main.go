// Tracker: BitTorrent-style s-networks (§5.5). Each t-peer acts as its
// s-network's tracker: peers announce stored items to it, lookups go to the
// tracker and are resolved with a direct fetch — no flooding. The example
// runs the same workload in flooding mode and tracker mode and compares
// contacted-peer counts and latency.
//
//	go run ./examples/tracker
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	fmt.Println("same workload, two s-network styles (p_s = 0.8, 400 peers):")
	flood := runMode(false)
	track := runMode(true)

	t := metrics.NewTable("Gnutella-style flooding vs BitTorrent-style tracker s-networks",
		"mode", "success", "mean hops", "mean ms", "contacts/lookup")
	t.AddRow("flooding (TTL 4)", flood.success, flood.hops, flood.ms, flood.contacts)
	t.AddRow("tracker", track.success, track.hops, track.ms, track.contacts)
	fmt.Println(t)

	fmt.Println("the tracker answers point-to-point, so lookups touch a constant number")
	fmt.Println("of peers; flooding touches every peer within the TTL radius.")
}

type outcome struct {
	success  float64
	hops     float64
	ms       float64
	contacts float64
}

func runMode(tracker bool) outcome {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(5)
	net := simnet.New(eng, topo, simnet.DefaultConfig())

	cfg := core.DefaultConfig()
	cfg.Ps = 0.8
	cfg.TrackerMode = tracker
	cfg.LookupTimeout = 5 * sim.Second
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 400})
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	keys := workload.Keys(1500)
	for i, key := range keys {
		if _, err := sys.StoreSync(peers[(i*29)%len(peers)], key, "v"); err != nil {
			log.Fatal(err)
		}
	}

	var hops, lat, contacts metrics.Summary
	ok := 0
	const lookups = 800
	for i := 0; i < lookups; i++ {
		r, err := sys.LookupSync(peers[(i*37)%len(peers)], keys[(i*11)%len(keys)])
		if err != nil {
			log.Fatal(err)
		}
		if r.OK {
			ok++
			hops.Add(float64(r.Hops))
			lat.Add(float64(r.Latency) / float64(sim.Millisecond))
		}
		contacts.Add(float64(r.Contacts))
	}
	return outcome{
		success:  float64(ok) / lookups,
		hops:     hops.Mean(),
		ms:       lat.Mean(),
		contacts: contacts.Mean(),
	}
}

// Quickstart: build a small hybrid peer-to-peer system, insert a few data
// items and look them up, printing what the two-tier protocol did for each
// operation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	// 1. A physical network for the overlay to live on. The generator
	// produces a GT-ITM-style transit-stub topology; peers sit on stub
	// (edge) nodes and every overlay message pays real path latency.
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The simulation substrate: a deterministic event engine plus the
	// message layer.
	eng := sim.New(7)
	net := simnet.New(eng, topo, simnet.DefaultConfig())

	// 3. The hybrid system itself: half t-peers (the structured ring),
	// half s-peers (the unstructured trees hanging off it).
	cfg := core.DefaultConfig()
	cfg.Ps = 0.5
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		log.Fatal(err)
	}

	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: 100})
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system up: %d t-peers on the ring, %d s-peers in trees\n",
		len(sys.TPeers()), len(sys.SPeers()))
	var totalHops int
	for _, js := range joins {
		totalHops += js.Hops
	}
	fmt.Printf("average join cost: %.2f overlay hops\n\n", float64(totalHops)/float64(len(joins)))

	// 4. Insert data. store(key, value) hashes the key to a d_id; if the
	// local s-network owns that segment the item stays local, otherwise it
	// rides the ring to the owning s-network.
	files := []string{"papers/hybrid-p2p.pdf", "music/track01.ogg", "iso/linux.iso"}
	for i, key := range files {
		r, err := sys.StoreSync(peers[i*7], key, fmt.Sprintf("contents of %s", key))
		if err != nil {
			log.Fatal(err)
		}
		holder := sys.Peer(r.Holder.Addr)
		fmt.Printf("store  %-22s -> landed on peer %d (%v) after %d hops\n",
			key, r.Holder.Addr, holder.Role, r.Hops)
	}
	fmt.Println()

	// 5. Look the data up from unrelated peers. Each result reports hop
	// count, simulated latency and how many peers the query contacted.
	for i, key := range files {
		origin := peers[50+i*9]
		r, err := sys.LookupSync(origin, key)
		if err != nil {
			log.Fatal(err)
		}
		if !r.OK {
			fmt.Printf("lookup %-22s FAILED\n", key)
			continue
		}
		fmt.Printf("lookup %-22s ok: %d hops, %.1f ms, %d peers contacted, value %q\n",
			key, r.Hops, float64(r.Latency)/float64(sim.Millisecond), r.Contacts, r.Value)
	}

	// 6. Peers can leave gracefully (a leaving t-peer hands its ring
	// position to one of its s-peers) and the ring stays consistent.
	leaving := sys.TPeers()[0]
	fmt.Printf("\nt-peer %d leaves; an s-peer substitutes in place...\n", leaving.Addr)
	leaving.Leave()
	sys.Settle(5 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		log.Fatal("ring broken after leave: ", err)
	}
	fmt.Printf("ring still consistent: %d t-peers, %d promotions happened\n",
		len(sys.TPeers()), sys.Stats().Promotions)
}

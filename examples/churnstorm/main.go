// Churnstorm: the failure-handling machinery under stress. Peers leave
// gracefully (t-peers substitute an s-peer in place, §3.2.1), crash abruptly
// (HELLO/ack watchdogs detect it, orphaned subtrees rejoin, the server
// arbitrates t-peer replacement), and new peers keep joining throughout.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 99)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(99)
	net := simnet.New(eng, topo, simnet.DefaultConfig())

	cfg := core.DefaultConfig()
	cfg.Ps = 0.7
	cfg.LookupTimeout = 5 * sim.Second
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		log.Fatal(err)
	}

	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 500})
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle(10 * sim.Second)
	fmt.Printf("built 500 peers: %d t-peers / %d s-peers\n", len(sys.TPeers()), len(sys.SPeers()))

	// Seed data so lookups have something to find.
	keys := workload.Keys(2000)
	for i, key := range keys {
		if _, err := sys.StoreSync(peers[(i*31)%len(peers)], key, "v"); err != nil {
			log.Fatal(err)
		}
	}

	// The storm: five rounds of graceful leaves, abrupt crashes and fresh
	// joins, with the ring and tree invariants checked after each round.
	rng := eng.Rand()
	stubs := topo.StubNodes()
	for round := 1; round <= 5; round++ {
		live := sys.Peers()
		// 5% graceful leaves.
		for i := 0; i < len(live)/20; i++ {
			live[rng.Intn(len(live))].Leave()
		}
		// 5% abrupt crashes.
		live = sys.Peers()
		for i := 0; i < len(live)/20; i++ {
			live[rng.Intn(len(live))].Crash()
		}
		// Failure detection + recovery window.
		sys.Settle(3 * cfg.HelloTimeout)

		// 40 fresh joins.
		for i := 0; i < 40; i++ {
			if _, _, err := sys.JoinSync(core.JoinOpts{
				Host:     stubs[rng.Intn(len(stubs))],
				Capacity: 1,
			}); err != nil {
				log.Fatal(err)
			}
		}
		sys.Settle(2 * cfg.HelloEvery)

		ringErr := sys.CheckRing()
		treeErr := sys.CheckTrees()
		st := sys.Stats()
		fmt.Printf("round %d: peers=%d ring=%v trees=%v promotions=%d rejoins=%d watchdog-expiries=%d\n",
			round, sys.NumPeers(), errStr(ringErr), errStr(treeErr),
			st.Promotions, st.Rejoins, st.WatchdogExpiries)
		if ringErr != nil || treeErr != nil {
			log.Fatal("invariant violated during churn")
		}
	}

	// After the storm: how much data survived? (Crashed peers lose their
	// load; graceful leavers hand it over.)
	ok, fail := 0, 0
	all := sys.Peers()
	for i := 0; i < 1000; i++ {
		r, err := sys.LookupSync(all[(i*17)%len(all)], keys[(i*7)%len(keys)])
		if err != nil {
			log.Fatal(err)
		}
		if r.OK {
			ok++
		} else {
			fail++
		}
	}
	fmt.Printf("\nafter the storm: %d/%d lookups succeed (%.1f%% failure — lost with crashed peers)\n",
		ok, ok+fail, 100*float64(fail)/float64(ok+fail))
	fmt.Printf("items still reachable in the system: %d of %d\n", sys.TotalItems(), len(keys))
}

func errStr(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
